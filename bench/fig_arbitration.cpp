// Abort-vs-wait arbitration sweep (DESIGN.md §13): the same contended
// closed-loop cells run once per arbitration mode — abort (losers retry
// immediately, waits burn CPU in yield loops) and wait (requester-waits:
// losers park on the winner's descriptor until its commit/abort fires the
// unpark edge) — over a zipf-skewed skiplist at M ∈ {8,16,32}, reporting
// throughput plus the two costs parking exists to cut: involuntary context
// switches and total CPU time, both normalized per commit (getrusage deltas
// around each cell).
//
// --json=BENCH_arbitration.json writes a machine-readable report gated in
// CI by tools/check_bench.py --mode arbitration: per-row validation,
// commits > 0 and attempt conservation in BOTH modes, parks recorded only
// in wait mode; the headline performance clauses (wait cuts involuntary
// context switches AND CPU time per commit at M >= 16 without reducing
// attempts/s) only on hosts with >= 8 CPUs — on an oversubscribed host the
// scheduler preempts everything constantly, which drowns exactly the
// voluntary-vs-involuntary switch signal the clause measures.
#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  std::string benchmark;
  std::string mode;  // "abort" | "wait"
  long threads = 0;
  double throughput_per_s = 0.0;
  double attempts_per_s = 0.0;
  double aborts_per_commit = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  // Process-wide getrusage deltas across the cell (populate excluded is not
  // possible process-wide, but both modes pay the identical populate, so
  // the comparison stays fair).
  long nivcsw = 0;       // involuntary context switches
  long nvcsw = 0;        // voluntary context switches (parking raises these)
  double cpu_ns = 0.0;   // ru_utime + ru_stime
  std::uint64_t parks = 0;
  std::uint64_t park_ns = 0;
  std::uint64_t unparks = 0;
  std::uint64_t spurious_wakeups = 0;
  bool valid = true;

  double nivcsw_per_commit() const {
    return commits > 0 ? static_cast<double>(nivcsw) / static_cast<double>(commits) : 0.0;
  }
  double cpu_us_per_commit() const {
    return commits > 0 ? cpu_ns / 1e3 / static_cast<double>(commits) : 0.0;
  }
};

double rusage_cpu_ns(const rusage& ru) {
  const auto tv_ns = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1e9 + static_cast<double>(tv.tv_usec) * 1e3;
  };
  return tv_ns(ru.ru_utime) + tv_ns(ru.ru_stime);
}

void write_json(const std::string& path, const std::vector<Row>& rows, const std::string& cm,
                long key_range, double zipf_alpha, long update_percent, long ms) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig_arbitration: cannot write %s\n", path.c_str());
    return;
  }
  // host_cpus lets the CI gate decide whether the ctx-switch/CPU-time
  // clauses are meaningful on this machine (see the header comment).
  out << "{\n  \"context\": {\"cm\": \"" << cm << "\", \"key_range\": " << key_range
      << ", \"zipf_alpha\": " << zipf_alpha << ", \"update_percent\": " << update_percent
      << ", \"ms\": " << ms << ", \"host_cpus\": " << std::thread::hardware_concurrency()
      << "},\n  \"arbitration\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"benchmark\": \"" << r.benchmark << "\", \"mode\": \"" << r.mode
        << "\", \"threads\": " << r.threads << ", \"throughput_per_s\": " << r.throughput_per_s
        << ", \"attempts_per_s\": " << r.attempts_per_s
        << ", \"aborts_per_commit\": " << r.aborts_per_commit << ", \"attempts\": " << r.attempts
        << ", \"commits\": " << r.commits << ", \"aborts\": " << r.aborts
        << ", \"nivcsw\": " << r.nivcsw << ", \"nvcsw\": " << r.nvcsw
        << ", \"cpu_ns\": " << r.cpu_ns << ", \"nivcsw_per_commit\": " << r.nivcsw_per_commit()
        << ", \"cpu_us_per_commit\": " << r.cpu_us_per_commit() << ", \"parks\": " << r.parks
        << ", \"park_ns\": " << r.park_ns << ", \"unparks\": " << r.unparks
        << ", \"spurious_wakeups\": " << r.spurious_wakeups
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "fig_arbitration: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("benchmarks", "comma-separated workloads for the sweep",
               std::string("skiplist"));
  cli.add_flag("threads", "M values (comma list)", std::string("8,16,32"));
  cli.add_flag("cm", "contention manager (same in both modes)", std::string("Polka"));
  cli.add_flag("key-range", "int-set key range (narrow = contended)", std::int64_t{256});
  cli.add_flag("zipf-alpha", "Zipf skew of the key draw (0 = uniform)", 1.2);
  cli.add_flag("update-percent", "percent of update transactions", std::int64_t{100});
  cli.add_flag("ms", "measured milliseconds per cell", std::int64_t{300});
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("json", "write a machine-readable report here (empty = off)",
               std::string("BENCH_arbitration.json"));
  cli.add_flag("csv", "CSV table instead of aligned text", false);
  if (!cli.parse(argc, argv)) return 1;

  const std::string cm_name = cli.get_string("cm");
  const long key_range = cli.get_int("key-range");
  const double zipf_alpha = cli.get_double("zipf-alpha");
  const long update_percent = cli.get_int("update-percent");
  const long ms = cli.get_int("ms");
  const std::vector<std::string> benchmarks = cli.get_string_list("benchmarks");
  const std::vector<std::int64_t> sweep = cli.get_int_list("threads");

  std::cout << "== Arbitration sweep: abort (spin-retry) vs wait (requester-waits parking), "
            << cm_name << ", range " << key_range << ", zipf " << zipf_alpha << ", "
            << update_percent << "% updates ==\n\n";

  Table table({"benchmark", "mode", "M", "commits/s", "attempts/s", "aborts/commit",
               "nivcsw/commit", "cpu_us/commit", "parks", "park_ms", "spurious"});
  std::vector<Row> rows;
  bool all_valid = true;

  auto run_cell = [&](const std::string& benchmark, std::int64_t m, const char* mode) {
    std::fprintf(stderr, "[%s M=%lld] %s ...\n", benchmark.c_str(), static_cast<long long>(m),
                 mode);
    auto workload = harness::make_workload(benchmark, static_cast<std::uint32_t>(update_percent),
                                           key_range, zipf_alpha);
    harness::RunConfig run;
    run.threads = static_cast<std::uint32_t>(m);
    run.duration_ms = ms;
    run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    run.arbitration = mode;

    rusage before{};
    getrusage(RUSAGE_SELF, &before);
    const harness::RunResult r = harness::run_workload(cm_name, cm::Params{}, *workload, run);
    rusage after{};
    getrusage(RUSAGE_SELF, &after);

    Row row;
    row.benchmark = benchmark;
    row.mode = mode;
    row.threads = static_cast<long>(m);
    row.throughput_per_s = r.summary.throughput_per_s;
    row.aborts_per_commit = r.summary.aborts_per_commit;
    row.commits = r.totals.commits;
    row.aborts = r.totals.aborts;
    row.attempts = r.totals.commits + r.totals.aborts;
    if (r.elapsed_ns > 0) {
      row.attempts_per_s =
          static_cast<double>(row.attempts) / (static_cast<double>(r.elapsed_ns) / 1e9);
    }
    row.nivcsw = after.ru_nivcsw - before.ru_nivcsw;
    row.nvcsw = after.ru_nvcsw - before.ru_nvcsw;
    row.cpu_ns = rusage_cpu_ns(after) - rusage_cpu_ns(before);
    row.parks = r.totals.parks;
    row.park_ns = r.totals.park_ns;
    row.unparks = r.totals.unparks;
    row.spurious_wakeups = r.totals.spurious_wakeups;
    row.valid = r.valid;
    if (!r.valid) {
      all_valid = false;
      std::fprintf(stderr, "VALIDATION FAILED [%s M=%lld %s]: %s\n", benchmark.c_str(),
                   static_cast<long long>(m), mode, r.why.c_str());
    }
    rows.push_back(row);

    table.add_row({benchmark, mode, std::to_string(m), Table::num(row.throughput_per_s, 0),
                   Table::num(row.attempts_per_s, 0), Table::num(row.aborts_per_commit, 3),
                   Table::num(row.nivcsw_per_commit(), 4),
                   Table::num(row.cpu_us_per_commit(), 1), std::to_string(row.parks),
                   Table::num(static_cast<double>(row.park_ns) / 1e6, 1),
                   std::to_string(row.spurious_wakeups)});
  };

  for (const std::string& benchmark : benchmarks) {
    for (const std::int64_t m : sweep) {
      run_cell(benchmark, m, "abort");
      run_cell(benchmark, m, "wait");
    }
  }

  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text()) << "\n";

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, rows, cm_name, key_range, zipf_alpha, update_percent, ms);
  }
  return all_valid ? 0 : 2;
}
