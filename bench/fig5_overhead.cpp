// Figure 5: total time to commit a fixed number of transactions at 32
// threads under Low (20% updates), Medium (60%) and High (100%) contention
// on the four benchmarks.
//
// Paper settings: --commits=20000 --threads=32. Expected shape (Section
// III-D): window variants need less time than Greedy/Priority on List and
// RBTree; on SkipList the window overhead (randomized delays + adaptive
// guessing) shows as 2-3x extra time under low contention and fades as
// contention rises; Vacation beats Polka/Greedy, comparable to Priority.
#include <iostream>

#include "harness/report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("benchmarks", "comma-separated benchmarks",
               std::string("list,rbtree,skiplist,vacation"));
  cli.add_flag("cms", "comma-separated contention managers",
               std::string("Online-Dynamic,Adaptive-Improved-Dynamic,Polka,Greedy,Priority"));
  cli.add_flag("threads", "worker threads M (paper: 32)", static_cast<std::int64_t>(32));
  cli.add_flag("commits", "transactions to commit per run (paper: 20000)",
               static_cast<std::int64_t>(4000));
  cli.add_flag("updates", "comma-separated update percentages",
               std::string("20,60,100"));
  cli.add_flag("runs", "repetitions per point", static_cast<std::int64_t>(1));
  cli.add_flag("key-range", "int-set key range", static_cast<std::int64_t>(256));
  cli.add_flag("window-n", "window length N", static_cast<std::int64_t>(50));
  cli.add_flag("seed", "base RNG seed", static_cast<std::int64_t>(42));
  cli.add_flag("csv", "emit CSV", false);
  if (!cli.parse(argc, argv)) return 1;

  const auto benchmarks = cli.get_string_list("benchmarks");
  const auto cms = cli.get_string_list("cms");
  const auto updates = cli.get_int_list("updates");

  harness::RunConfig base;
  base.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  base.fixed_commits = static_cast<std::uint64_t>(cli.get_int("commits"));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cm::Params params;
  params.window_n = static_cast<std::uint32_t>(cli.get_int("window-n"));
  const auto runs = static_cast<unsigned>(cli.get_int("runs"));
  const long key_range = cli.get_int("key-range");

  std::cout << "== Fig. 5: time (ms) to commit " << base.fixed_commits << " transactions at M="
            << base.threads << " ==\n\n";
  bool all_valid = true;
  for (const std::string& benchmark : benchmarks) {
    std::vector<std::string> header{"CM \\ update%"};
    for (const auto u : updates) header.push_back(std::to_string(u) + "%");
    Table table(header);
    for (const std::string& cm_name : cms) {
      std::vector<std::string> row{cm_name};
      for (const auto u : updates) {
        std::fprintf(stderr, "[%s] %s update=%lld%% ...\n", benchmark.c_str(), cm_name.c_str(),
                     static_cast<long long>(u));
        const auto result = harness::run_repeated(
            cm_name, params,
            [&] {
              return harness::make_workload(benchmark, static_cast<std::uint32_t>(u),
                                            key_range);
            },
            base, runs);
        if (!result.valid) {
          all_valid = false;
          std::fprintf(stderr, "VALIDATION FAILED [%s/%s/%lld%%]: %s\n", benchmark.c_str(),
                       cm_name.c_str(), static_cast<long long>(u), result.why.c_str());
        }
        row.push_back(Table::num(result.mean_elapsed_ms, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "# " << benchmark << " — total time (ms), lower is better\n"
              << (cli.get_bool("csv") ? table.to_csv() : table.to_text()) << "\n";
  }
  return all_valid ? 0 : 2;
}
