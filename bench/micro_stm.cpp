// Micro-benchmarks (google-benchmark) for the STM primitives: transaction
// begin/commit, open costs, contention-manager decision overhead, EBR
// retire, and structure operations at a fixed size. These quantify the
// constant factors under every figure bench.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"

// ------------------------------------------------- allocation interposer --
// Replacing the global operator new/delete lets the alloc-pressure benches
// count exactly how many global-allocator calls the hot path makes. The
// counter is thread-local so a bench thread observes only its own pressure.
thread_local std::uint64_t t_alloc_count = 0;

// Base RNG seed for every Runtime these benches construct; --seed=N
// overrides it (parsed in main before google-benchmark sees argv).
std::uint64_t g_seed = 0x5eed;

namespace {
void* counted_alloc(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++t_alloc_count;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  // posix_memalign results are free()-compatible, so one delete path serves
  // both aligned and plain blocks.
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace wstm;

struct Fixture {
  explicit Fixture(const std::string& cm_name = "Polka") {
    cm::Params params;
    params.threads = 2;
    rt = std::make_unique<stm::Runtime>(cm::make_manager(cm_name, params));
    tc = &rt->attach_thread();
  }
  std::unique_ptr<stm::Runtime> rt;
  stm::ThreadCtx* tc;
};

void BM_EmptyTransaction(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    f.rt->atomically(*f.tc, [](stm::Tx&) {});
  }
}
BENCHMARK(BM_EmptyTransaction);

void BM_ReadOneObject(benchmark::State& state) {
  Fixture f;
  stm::TObject<long> obj(7);
  for (auto _ : state) {
    long v = f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return *obj.open_read(tx); });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ReadOneObject);

void BM_WriteOneObject(benchmark::State& state) {
  Fixture f;
  stm::TObject<long> obj(0);
  for (auto _ : state) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
}
BENCHMARK(BM_WriteOneObject);

void BM_OpenReadMany(benchmark::State& state) {
  Fixture f;
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<stm::TObject<long>>> objs;
  for (std::size_t i = 0; i < count; ++i) objs.push_back(std::make_unique<stm::TObject<long>>(1));
  for (auto _ : state) {
    long sum = f.rt->atomically(*f.tc, [&](stm::Tx& tx) {
      long s = 0;
      for (auto& o : objs) s += *o->open_read(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(count));
}
BENCHMARK(BM_OpenReadMany)->Arg(8)->Arg(64)->Arg(256);

void BM_IntSetContains(benchmark::State& state) {
  Fixture f;
  const std::string kind = state.range(0) == 0 ? "list" : state.range(0) == 1 ? "rbtree"
                                                                              : "skiplist";
  auto set = structs::make_intset(kind);
  for (long k = 0; k < 256; k += 2) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { set->insert(tx, k); });
  }
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const long key = static_cast<long>(rng.below(256));
    bool v = f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->contains(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_IntSetContains)->Arg(0)->Arg(1)->Arg(2);

void BM_IntSetUpdateMix(benchmark::State& state) {
  Fixture f;
  const std::string kind = state.range(0) == 0 ? "list" : state.range(0) == 1 ? "rbtree"
                                                                              : "skiplist";
  auto set = structs::make_intset(kind);
  for (long k = 0; k < 256; k += 2) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { set->insert(tx, k); });
  }
  Xoshiro256 rng(4);
  for (auto _ : state) {
    const long key = static_cast<long>(rng.below(256));
    if (rng.below(2) == 0) {
      f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->insert(tx, key); });
    } else {
      f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->remove(tx, key); });
    }
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_IntSetUpdateMix)->Arg(0)->Arg(1)->Arg(2);

void BM_CmResolve(benchmark::State& state) {
  static const char* kNames[] = {"Polka", "Greedy", "Priority", "Aggressive",
                                 "RandomizedRounds", "Online-Dynamic"};
  const std::string name = kNames[state.range(0)];
  Fixture f(name);
  stm::TxDesc me, enemy;
  me.thread_slot = 0;
  enemy.thread_slot = 1;
  me.first_begin_ns = 1;      // we are older: every manager decides without
  enemy.first_begin_ns = 2;   // waiting, so this measures pure decision cost
  me.karma.store(5);
  enemy.karma.store(1);
  me.rand_prio.store(1);
  enemy.rand_prio.store(2);
  me.prio_class.store(0);
  enemy.prio_class.store(1);
  for (auto _ : state) {
    auto r = f.rt->manager().resolve(*f.tc, me, enemy, stm::ConflictKind::kWriteWrite);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_CmResolve)->DenseRange(0, 5);

void BM_EbrRetire(benchmark::State& state) {
  ebr::Domain domain;
  ebr::Handle h = domain.attach();
  for (auto _ : state) {
    ebr::Guard g(h);
    h.retire(new long(1));
  }
}
BENCHMARK(BM_EbrRetire);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(100));
  }
}
BENCHMARK(BM_Xoshiro);

// ------------------------------------------------- allocation pressure --
// Arg(1) = pooled (RuntimeConfig::pooling on), Arg(0) = every TxDesc /
// Locator / clone through the global allocator. The counter reports
// global-allocator calls per attempt: pooled steady state must be ~0.
void BM_AllocPressureWriteTx(benchmark::State& state) {
  stm::RuntimeConfig cfg;
  cfg.seed = g_seed;
  cfg.pooling = state.range(0) != 0;
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params), cfg);
  stm::ThreadCtx& tc = rt.attach_thread();
  std::vector<std::unique_ptr<stm::TObject<long>>> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(std::make_unique<stm::TObject<long>>(0));
  // Warm up past first-touch slab carving and EBR epoch lag: the claim under
  // test is about the steady state, where every block is recycled.
  for (int i = 0; i < 512; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) {
      for (auto& o : objs) *o->open_write(tx) += 1;
    });
  }
  rt.reset_metrics();
  const std::uint64_t allocs_before = t_alloc_count;
  for (auto _ : state) {
    rt.atomically(tc, [&](stm::Tx& tx) {
      for (auto& o : objs) *o->open_write(tx) += 1;
    });
  }
  const auto allocs = static_cast<double>(t_alloc_count - allocs_before);
  const stm::ThreadMetrics totals = rt.total_metrics();
  const auto attempts = static_cast<double>(totals.commits + totals.aborts);
  state.counters["allocs_per_attempt"] = attempts > 0 ? allocs / attempts : 0.0;
  state.counters["attempts"] =
      benchmark::Counter(attempts, benchmark::Counter::kIsRate);
  state.SetLabel(cfg.pooling ? "pooled" : "malloc");
}
BENCHMARK(BM_AllocPressureWriteTx)->Arg(1)->Arg(0);

// ------------------------------------------------- read-set scaling -----
// Invisible-read validation cost as the read-set size R grows. Each
// iteration is one transaction reading R distinct objects plus one write
// (the write exercises the commit-clock bump on every commit). Args are
// (R, snapshot_ext): with the commit-clock fast path on, validation is
// amortized O(1) per open, so validations_per_read stays ~0 and ns/read is
// flat in R; with it off every open revalidates the whole set — O(R²) per
// transaction, validations_per_read ~1 and ns/read growing linearly in R.
void BM_ReadSetScaling(benchmark::State& state) {
  const auto reads = static_cast<std::size_t>(state.range(0));
  stm::RuntimeConfig cfg;
  cfg.seed = g_seed;
  cfg.visible_reads = false;
  cfg.snapshot_ext = state.range(1) != 0;
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params), cfg);
  stm::ThreadCtx& tc = rt.attach_thread();
  std::vector<std::unique_ptr<stm::TObject<long>>> objs;
  for (std::size_t i = 0; i < reads; ++i) {
    objs.push_back(std::make_unique<stm::TObject<long>>(1));
  }
  stm::TObject<long> sink(0);
  // Warm past slab carving and the dedup table's growth so the measured
  // loop is steady-state.
  for (int i = 0; i < 64; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) {
      long s = 0;
      for (auto& o : objs) s += *o->open_read(tx);
      *sink.open_write(tx) = s;
    });
  }
  rt.reset_metrics();
  for (auto _ : state) {
    long sum = rt.atomically(tc, [&](stm::Tx& tx) {
      long s = 0;
      for (auto& o : objs) s += *o->open_read(tx);
      *sink.open_write(tx) = s;
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  const stm::ThreadMetrics totals = rt.total_metrics();
  const auto opens = static_cast<double>(state.iterations()) * static_cast<double>(reads);
  state.counters["validations_per_read"] =
      opens > 0 ? static_cast<double>(totals.validated_reads) / opens : 0.0;
  state.counters["validation_passes"] = static_cast<double>(totals.validations);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(reads));
  state.SetLabel(cfg.snapshot_ext ? "ext" : "noext");
}
BENCHMARK(BM_ReadSetScaling)
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({256, 0});

// Write-heavy int-set contention at 8 threads, pooled vs. malloc'd. All
// bench threads share one Runtime + list; the fixture is refcounted because
// google-benchmark calls the function once per thread.
struct SharedStm {
  std::unique_ptr<stm::Runtime> rt;
  std::unique_ptr<structs::TxIntSet> set;
};

std::mutex g_shared_mutex;
SharedStm* g_shared = nullptr;
int g_shared_refs = 0;

// clock_mode: 0 = visible reads (the paper's default; clock untouched),
// 1 = invisible reads + snapshot extension + deferred clock (GV5-style),
// 2 = invisible reads + snapshot extension + eager clock (one fetch_add
// per write-commit) — the A/B for the shared-line reduction claim.
SharedStm& acquire_shared(bool pooling, int clock_mode, std::uint32_t threads) {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (g_shared_refs++ == 0) {
    auto* s = new SharedStm;
    stm::RuntimeConfig cfg;
    cfg.seed = g_seed;
    cfg.pooling = pooling;
    if (clock_mode != 0) {
      cfg.visible_reads = false;
      cfg.snapshot_ext = true;
      cfg.deferred_clock = clock_mode == 1;
    }
    cfg.preempt_yield_permille = hardware_cpus() < threads ? 25 : 0;
    cm::Params params;
    params.threads = threads;
    s->rt = std::make_unique<stm::Runtime>(cm::make_manager("Polka", params), cfg);
    s->set = structs::make_intset("list");
    stm::ThreadCtx& tc = s->rt->attach_thread();
    for (long k = 0; k < 256; k += 2) {
      s->rt->atomically(tc, [&](stm::Tx& tx) { s->set->insert(tx, k); });
    }
    s->rt->detach_thread(tc);
    g_shared = s;
  }
  return *g_shared;
}

void release_shared() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (--g_shared_refs == 0) {
    delete g_shared;
    g_shared = nullptr;
  }
}

void BM_IntsetWriteHeavy(benchmark::State& state) {
  const bool pooling = state.range(0) != 0;
  const int clock_mode = static_cast<int>(state.range(1));
  SharedStm& shared =
      acquire_shared(pooling, clock_mode, static_cast<std::uint32_t>(state.threads()));
  stm::ThreadCtx& tc = shared.rt->attach_thread();
  Xoshiro256 rng(0x5eedULL + static_cast<std::uint64_t>(state.thread_index()));
  const std::uint64_t allocs_before = t_alloc_count;
  const stm::ThreadMetrics before = tc.metrics();
  for (auto _ : state) {
    const long key = static_cast<long>(rng.below(256));
    if (rng.below(2) == 0) {
      shared.rt->atomically(tc, [&](stm::Tx& tx) { return shared.set->insert(tx, key); });
    } else {
      shared.rt->atomically(tc, [&](stm::Tx& tx) { return shared.set->remove(tx, key); });
    }
  }
  const auto allocs = static_cast<double>(t_alloc_count - allocs_before);
  const stm::ThreadMetrics after = tc.metrics();
  const auto attempts =
      static_cast<double>((after.commits - before.commits) + (after.aborts - before.aborts));
  state.counters["allocs_per_attempt"] =
      benchmark::Counter(attempts > 0 ? allocs / attempts : 0.0,
                         benchmark::Counter::kAvgThreads);
  state.counters["attempts"] = benchmark::Counter(attempts, benchmark::Counter::kIsRate);
  // Shared commit-clock line traffic (summed across bench threads): in
  // deferred mode clock_bumps must sit far below deferred_stamps (the
  // write-commit count); in eager mode clock_bumps IS the commit count.
  state.counters["clock_bumps"] =
      benchmark::Counter(static_cast<double>(after.clock_bumps - before.clock_bumps));
  state.counters["deferred_stamps"] =
      benchmark::Counter(static_cast<double>(after.deferred_stamps - before.deferred_stamps));
  std::string label = pooling ? "pooled" : "malloc";
  if (clock_mode != 0) label += clock_mode == 1 ? "+deferred" : "+eager";
  state.SetLabel(label);
  shared.rt->detach_thread(tc);
  release_shared();
}
BENCHMARK(BM_IntsetWriteHeavy)
    ->Threads(8)
    ->Args({1, 0})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark owns argv, so
// --seed=N is peeled off first and fed to every RuntimeConfig above.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      g_seed = std::stoull(std::string(arg.substr(7)));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
