// Micro-benchmarks (google-benchmark) for the STM primitives: transaction
// begin/commit, open costs, contention-manager decision overhead, EBR
// retire, and structure operations at a fixed size. These quantify the
// constant factors under every figure bench.
#include <benchmark/benchmark.h>

#include <memory>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/rng.hpp"

namespace {

using namespace wstm;

struct Fixture {
  explicit Fixture(const std::string& cm_name = "Polka") {
    cm::Params params;
    params.threads = 2;
    rt = std::make_unique<stm::Runtime>(cm::make_manager(cm_name, params));
    tc = &rt->attach_thread();
  }
  std::unique_ptr<stm::Runtime> rt;
  stm::ThreadCtx* tc;
};

void BM_EmptyTransaction(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    f.rt->atomically(*f.tc, [](stm::Tx&) {});
  }
}
BENCHMARK(BM_EmptyTransaction);

void BM_ReadOneObject(benchmark::State& state) {
  Fixture f;
  stm::TObject<long> obj(7);
  for (auto _ : state) {
    long v = f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return *obj.open_read(tx); });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ReadOneObject);

void BM_WriteOneObject(benchmark::State& state) {
  Fixture f;
  stm::TObject<long> obj(0);
  for (auto _ : state) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
}
BENCHMARK(BM_WriteOneObject);

void BM_OpenReadMany(benchmark::State& state) {
  Fixture f;
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<stm::TObject<long>>> objs;
  for (std::size_t i = 0; i < count; ++i) objs.push_back(std::make_unique<stm::TObject<long>>(1));
  for (auto _ : state) {
    long sum = f.rt->atomically(*f.tc, [&](stm::Tx& tx) {
      long s = 0;
      for (auto& o : objs) s += *o->open_read(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(count));
}
BENCHMARK(BM_OpenReadMany)->Arg(8)->Arg(64)->Arg(256);

void BM_IntSetContains(benchmark::State& state) {
  Fixture f;
  const std::string kind = state.range(0) == 0 ? "list" : state.range(0) == 1 ? "rbtree"
                                                                              : "skiplist";
  auto set = structs::make_intset(kind);
  for (long k = 0; k < 256; k += 2) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { set->insert(tx, k); });
  }
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const long key = static_cast<long>(rng.below(256));
    bool v = f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->contains(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_IntSetContains)->Arg(0)->Arg(1)->Arg(2);

void BM_IntSetUpdateMix(benchmark::State& state) {
  Fixture f;
  const std::string kind = state.range(0) == 0 ? "list" : state.range(0) == 1 ? "rbtree"
                                                                              : "skiplist";
  auto set = structs::make_intset(kind);
  for (long k = 0; k < 256; k += 2) {
    f.rt->atomically(*f.tc, [&](stm::Tx& tx) { set->insert(tx, k); });
  }
  Xoshiro256 rng(4);
  for (auto _ : state) {
    const long key = static_cast<long>(rng.below(256));
    if (rng.below(2) == 0) {
      f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->insert(tx, key); });
    } else {
      f.rt->atomically(*f.tc, [&](stm::Tx& tx) { return set->remove(tx, key); });
    }
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_IntSetUpdateMix)->Arg(0)->Arg(1)->Arg(2);

void BM_CmResolve(benchmark::State& state) {
  static const char* kNames[] = {"Polka", "Greedy", "Priority", "Aggressive",
                                 "RandomizedRounds", "Online-Dynamic"};
  const std::string name = kNames[state.range(0)];
  Fixture f(name);
  stm::TxDesc me, enemy;
  me.thread_slot = 0;
  enemy.thread_slot = 1;
  me.first_begin_ns = 1;      // we are older: every manager decides without
  enemy.first_begin_ns = 2;   // waiting, so this measures pure decision cost
  me.karma.store(5);
  enemy.karma.store(1);
  me.rand_prio.store(1);
  enemy.rand_prio.store(2);
  me.prio_class.store(0);
  enemy.prio_class.store(1);
  for (auto _ : state) {
    auto r = f.rt->manager().resolve(*f.tc, me, enemy, stm::ConflictKind::kWriteWrite);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_CmResolve)->DenseRange(0, 5);

void BM_EbrRetire(benchmark::State& state) {
  ebr::Domain domain;
  ebr::Handle h = domain.attach();
  for (auto _ : state) {
    ebr::Guard g(h);
    h.retire(new long(1));
  }
}
BENCHMARK(BM_EbrRetire);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(100));
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
