// Eager-vs-lazy backend sweep (DESIGN.md §12): the same write-heavy
// closed-loop cells run once per backend — dstm (eager locator acquisition)
// and orec (lazy TL2-style redo logging) — over intset + skiplist at
// M ∈ {2,8,32}, reporting throughput, abort rate and the orec commit-path
// counters (lock acquires, lock waits, write-backs).
//
// --json=BENCH_backend.json writes a machine-readable report gated in CI by
// tools/check_bench.py --mode backend: per-row validation, commits > 0 on
// BOTH backends, and attempt conservation (attempts == commits + aborts)
// always; the headline performance clause (orec ≥ 1.5× dstm attempts/s on
// the low-contention intset cell at M=8) only on hosts with ≥ 8 CPUs —
// an oversubscribed host serializes the "concurrent" committers, which
// erases exactly the acquisition-cost gap the clause measures.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  std::string benchmark;
  std::string backend;  // "dstm" | "orec"
  long threads = 0;
  double throughput_per_s = 0.0;
  double attempts_per_s = 0.0;
  double aborts_per_commit = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t orec_lock_acquires = 0;
  std::uint64_t orec_lock_waits = 0;
  std::uint64_t orec_write_backs = 0;
  bool valid = true;
};

void write_json(const std::string& path, const std::vector<Row>& rows, const std::string& cm,
                long key_range, long update_percent, long ms) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig_backend: cannot write %s\n", path.c_str());
    return;
  }
  // host_cpus lets the CI gate decide whether the orec-vs-dstm throughput
  // clause is meaningful on this machine (see the header comment).
  out << "{\n  \"context\": {\"cm\": \"" << cm << "\", \"key_range\": " << key_range
      << ", \"update_percent\": " << update_percent << ", \"ms\": " << ms
      << ", \"host_cpus\": " << std::thread::hardware_concurrency() << "},\n"
      << "  \"backend\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"benchmark\": \"" << r.benchmark << "\", \"backend\": \"" << r.backend
        << "\", \"threads\": " << r.threads << ", \"throughput_per_s\": " << r.throughput_per_s
        << ", \"attempts_per_s\": " << r.attempts_per_s
        << ", \"aborts_per_commit\": " << r.aborts_per_commit << ", \"attempts\": " << r.attempts
        << ", \"commits\": " << r.commits << ", \"aborts\": " << r.aborts
        << ", \"orec_lock_acquires\": " << r.orec_lock_acquires
        << ", \"orec_lock_waits\": " << r.orec_lock_waits
        << ", \"orec_write_backs\": " << r.orec_write_backs
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "fig_backend: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("benchmarks", "comma-separated workloads for the sweep",
               std::string("list,skiplist"));
  cli.add_flag("threads", "M values (comma list)", std::string("2,8,32"));
  cli.add_flag("cm", "contention manager (same on both backends)", std::string("Polka"));
  cli.add_flag("key-range", "int-set key range (wide = low conflict)", std::int64_t{1024});
  cli.add_flag("update-percent", "percent of update transactions", std::int64_t{100});
  cli.add_flag("ms", "measured milliseconds per cell", std::int64_t{300});
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("json", "write a machine-readable report here (empty = off)",
               std::string("BENCH_backend.json"));
  cli.add_flag("csv", "CSV table instead of aligned text", false);
  if (!cli.parse(argc, argv)) return 1;

  const std::string cm_name = cli.get_string("cm");
  const long key_range = cli.get_int("key-range");
  const long update_percent = cli.get_int("update-percent");
  const long ms = cli.get_int("ms");
  const std::vector<std::string> benchmarks = cli.get_string_list("benchmarks");
  const std::vector<std::int64_t> sweep = cli.get_int_list("threads");

  std::cout << "== Backend sweep: dstm (eager) vs orec (lazy), " << cm_name << ", range "
            << key_range << ", " << update_percent << "% updates ==\n\n";

  Table table({"benchmark", "backend", "M", "commits/s", "attempts/s", "aborts/commit",
               "orec_locks", "lock_waits", "write_backs"});
  std::vector<Row> rows;
  bool all_valid = true;

  auto run_cell = [&](const std::string& benchmark, std::int64_t m, const char* backend) {
    std::fprintf(stderr, "[%s M=%lld] %s ...\n", benchmark.c_str(), static_cast<long long>(m),
                 backend);
    auto workload = harness::make_workload(
        benchmark, static_cast<std::uint32_t>(update_percent), key_range, /*zipf_alpha=*/0.0);
    harness::RunConfig run;
    run.threads = static_cast<std::uint32_t>(m);
    run.duration_ms = ms;
    run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    run.backend = backend;
    const harness::RunResult r = harness::run_workload(cm_name, cm::Params{}, *workload, run);

    Row row;
    row.benchmark = benchmark;
    row.backend = backend;
    row.threads = static_cast<long>(m);
    row.throughput_per_s = r.summary.throughput_per_s;
    row.aborts_per_commit = r.summary.aborts_per_commit;
    row.commits = r.totals.commits;
    row.aborts = r.totals.aborts;
    row.attempts = r.totals.commits + r.totals.aborts;
    if (r.elapsed_ns > 0) {
      row.attempts_per_s =
          static_cast<double>(row.attempts) / (static_cast<double>(r.elapsed_ns) / 1e9);
    }
    row.orec_lock_acquires = r.totals.orec_lock_acquires;
    row.orec_lock_waits = r.totals.orec_lock_waits;
    row.orec_write_backs = r.totals.orec_write_backs;
    row.valid = r.valid;
    if (!r.valid) {
      all_valid = false;
      std::fprintf(stderr, "VALIDATION FAILED [%s M=%lld %s]: %s\n", benchmark.c_str(),
                   static_cast<long long>(m), backend, r.why.c_str());
    }
    rows.push_back(row);

    table.add_row({benchmark, backend, std::to_string(m), Table::num(row.throughput_per_s, 0),
                   Table::num(row.attempts_per_s, 0), Table::num(row.aborts_per_commit, 3),
                   std::to_string(row.orec_lock_acquires), std::to_string(row.orec_lock_waits),
                   std::to_string(row.orec_write_backs)});
  };

  for (const std::string& benchmark : benchmarks) {
    for (const std::int64_t m : sweep) {
      run_cell(benchmark, m, "dstm");
      run_cell(benchmark, m, "orec");
    }
  }

  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text()) << "\n";

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, rows, cm_name, key_range, update_percent, ms);
  }
  return all_valid ? 0 : 2;
}
