// Theory validation (extension, not a paper figure): empirical makespans of
// the simulated Offline and Online window algorithms against the bounds of
// Theorems 2.1 and 2.3:
//
//   Offline:  makespan = O(tau (C + N log MN))
//   Online:   makespan = O(tau (C log MN + N log^2 MN))
//
// The Offline algorithm needs the conflict graph and was therefore not
// runnable in the paper's DSTM2 experiments — the simulator makes it
// measurable. The `ratio` column (makespan / bound) should stay bounded by
// a small constant as contention C grows; the one-shot baseline degrades.
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace wstm;

void run_section(const std::string& title, bool columnar, std::uint32_t m, std::uint32_t n,
                 const std::vector<std::int64_t>& pools, std::uint32_t accesses, unsigned runs,
                 std::uint64_t seed, bool csv) {
  Table table({"pool", "C", "scheduler", "makespan", "bound", "ratio", "aborts/commit"});
  for (const auto pool : pools) {
    const sim::SimWindow w =
        columnar
            ? sim::make_columnar_window(m, n, static_cast<std::uint32_t>(pool), accesses, seed)
            : sim::make_random_window(m, n, static_cast<std::uint32_t>(pool), accesses, seed);
    const sim::ConflictGraph g(w);
    const std::uint32_t c = g.max_degree();

    struct Row {
      sim::SchedulerOptions opt;
      double bound;
    };
    sim::SchedulerOptions offline;
    offline.mode = sim::SchedulerOptions::Mode::kOffline;
    sim::SchedulerOptions online;
    online.mode = sim::SchedulerOptions::Mode::kOnline;
    sim::SchedulerOptions oneshot;
    oneshot.mode = sim::SchedulerOptions::Mode::kOneshotRR;
    const Row rows[] = {
        {offline, sim::offline_bound(m, n, c)},
        {online, sim::online_bound(m, n, c)},
        {oneshot, sim::online_bound(m, n, c)},  // reference bound for comparison
    };
    for (const Row& r : rows) {
      const sim::AveragedSim avg = sim::average_runs(w, g, r.opt, runs, seed + 1);
      table.add_row({std::to_string(pool), std::to_string(c), sim::scheduler_name(r.opt),
                     Table::num(avg.makespan, 1), Table::num(r.bound, 1),
                     Table::num(avg.makespan / r.bound, 3),
                     Table::num(avg.aborts_per_commit, 2)});
    }
  }
  std::cout << "# " << title << "\n" << (csv ? table.to_csv() : table.to_text()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("m", "threads M", static_cast<std::int64_t>(16));
  cli.add_flag("n", "transactions per thread N", static_cast<std::int64_t>(16));
  cli.add_flag("column-pools", "per-column resource pool sizes (small = contended)",
               std::string("2,8,64"));
  cli.add_flag("global-pools", "global resource pool sizes for the random windows",
               std::string("4,16,64,256"));
  cli.add_flag("accesses", "resources accessed per transaction", static_cast<std::int64_t>(2));
  cli.add_flag("runs", "repetitions per point", static_cast<std::int64_t>(5));
  cli.add_flag("seed", "workload seed", static_cast<std::int64_t>(7));
  cli.add_flag("csv", "emit CSV", false);
  if (!cli.parse(argc, argv)) return 1;

  const auto m = static_cast<std::uint32_t>(cli.get_int("m"));
  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto accesses = static_cast<std::uint32_t>(cli.get_int("accesses"));
  const auto runs = static_cast<unsigned>(cli.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool csv = cli.get_bool("csv");

  std::cout << "== Theorems 2.1 / 2.3: simulated makespan vs bound (M=" << m << ", N=" << n
            << ") ==\n"
            << "(ratio = measured makespan / theoretical bound with constant 1;\n"
            << " the theorems assert the ratio stays below a fixed constant as C grows)\n\n";

  // The favorable case the paper motivates: conflicts confined to columns.
  // Free-running threads self-stagger, so all schedulers finish in about
  // N + M steps regardless of C — far below the bound.
  run_section("columnar windows (conflicts within a column only)", /*columnar=*/true, m, n,
              cli.get_int_list("column-pools"), accesses, runs, seed, csv);

  // The adversarial case: one global pool, conflicts across the entire
  // window, so contention persists for the whole run and the bound is
  // actually exercised.
  run_section("random windows (global pool, cross-column conflicts)", /*columnar=*/false, m, n,
              cli.get_int_list("global-pools"), accesses, runs, seed, csv);
  return 0;
}
