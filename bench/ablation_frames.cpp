// Ablations for the design choices called out in DESIGN.md §4:
//   1. frame-length factor phi (static Online is sensitive; dynamic is not),
//   2. static vs dynamic frames at a fixed workload,
//   3. CI smoothing alpha for Adaptive-Improved,
//   4. the random initial delay itself (initial C near zero forces alpha=1,
//      i.e. q_i = 0 — no delay — degenerating toward RandomizedRounds).
#include <iostream>

#include "harness/report.hpp"
#include "util/table.hpp"

namespace {

using namespace wstm;

harness::RepeatedResult run_point(const std::string& cm_name, cm::Params params,
                                  const harness::RunConfig& base, const std::string& benchmark,
                                  unsigned runs) {
  return harness::run_repeated(
      cm_name, params, [&] { return harness::make_workload(benchmark, 100, 256); }, base,
      runs);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("benchmark", "workload for the ablations", std::string("list"));
  cli.add_flag("threads", "worker threads M", static_cast<std::int64_t>(8));
  cli.add_flag("ms", "measured milliseconds per run", static_cast<std::int64_t>(300));
  cli.add_flag("runs", "repetitions per point", static_cast<std::int64_t>(1));
  cli.add_flag("factors", "frame factors to sweep", std::string("0.25,0.5,1,2,4"));
  cli.add_flag("alphas", "CI smoothing alphas to sweep", std::string("0.25,0.5,0.75,0.9"));
  cli.add_flag("seed", "base RNG seed", static_cast<std::int64_t>(42));
  cli.add_flag("csv", "emit CSV", false);
  if (!cli.parse(argc, argv)) return 1;

  const std::string benchmark = cli.get_string("benchmark");
  harness::RunConfig base;
  base.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  base.duration_ms = cli.get_int("ms");
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto runs = static_cast<unsigned>(cli.get_int("runs"));
  const bool csv = cli.get_bool("csv");

  std::cout << "== Ablations (" << benchmark << ", M=" << base.threads << ") ==\n\n";

  {
    Table t({"frame factor", "Online tput", "Online-Dynamic tput"});
    for (const auto& f : cli.get_string_list("factors")) {
      cm::Params params;
      params.frame_factor = std::stod(f);
      std::fprintf(stderr, "[ablation/frame-factor] phi=%s ...\n", f.c_str());
      const auto st = run_point("Online", params, base, benchmark, runs);
      const auto dy = run_point("Online-Dynamic", params, base, benchmark, runs);
      t.add_row({f, Table::num(st.mean_throughput, 0), Table::num(dy.mean_throughput, 0)});
    }
    std::cout << "# 1+2. frame-length factor, static vs dynamic frames\n"
              << (csv ? t.to_csv() : t.to_text()) << "\n";
  }

  {
    Table t({"CI alpha", "Adaptive-Improved tput", "Adaptive-Improved-Dynamic tput"});
    for (const auto& a : cli.get_string_list("alphas")) {
      cm::Params params;
      params.ci_alpha = std::stod(a);
      std::fprintf(stderr, "[ablation/ci-alpha] alpha=%s ...\n", a.c_str());
      const auto st = run_point("Adaptive-Improved", params, base, benchmark, runs);
      const auto dy = run_point("Adaptive-Improved-Dynamic", params, base, benchmark, runs);
      t.add_row({a, Table::num(st.mean_throughput, 0), Table::num(dy.mean_throughput, 0)});
    }
    std::cout << "# 3. CI smoothing alpha (Adaptive-Improved)\n"
              << (csv ? t.to_csv() : t.to_text()) << "\n";
  }

  {
    Table t({"variant", "throughput", "aborts/commit"});
    struct Cfg {
      const char* label;
      double initial_c;
    };
    for (const Cfg cfg : {Cfg{"random delay on (C=M)", 0.0}, Cfg{"random delay off (C~0)", 1e-6}}) {
      cm::Params params;
      params.initial_c = cfg.initial_c;
      std::fprintf(stderr, "[ablation/delay] %s ...\n", cfg.label);
      const auto r = run_point("Online-Dynamic", params, base, benchmark, runs);
      t.add_row({cfg.label, Table::num(r.mean_throughput, 0),
                 Table::num(r.mean_aborts_per_commit, 3)});
    }
    // RandomizedRounds = Online without frames at all, for reference.
    const auto rr = run_point("RandomizedRounds", cm::Params{}, base, benchmark, runs);
    t.add_row({"RandomizedRounds (no window)", Table::num(rr.mean_throughput, 0),
               Table::num(rr.mean_aborts_per_commit, 3)});
    std::cout << "# 4. random initial delay on/off\n" << (csv ? t.to_csv() : t.to_text());
  }
  return 0;
}
