// Figure 3: throughput of the best window variants (Online-Dynamic,
// Adaptive-Improved-Dynamic) against Polka, Greedy and Priority on the four
// benchmarks over M = 1..32 threads.
//
// Expected shape (paper Section III-B): window variants beat Greedy by
// ~2-4x on List, ~2-3x on RBTree, ~2x on Vacation; comparable to Polka
// everywhere except Vacation (window wins); SkipList slightly behind Polka.
#include <iostream>

#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  harness::register_matrix_flags(
      cli, /*benchmarks=*/"list,rbtree,skiplist,vacation",
      /*cms=*/"Online-Dynamic,Adaptive-Improved-Dynamic,Polka,Greedy,Priority",
      /*threads=*/"1,2,4,8,16,32,64", /*ms=*/400, /*runs=*/1);
  if (!cli.parse(argc, argv)) return 1;
  const harness::MatrixSpec spec = harness::matrix_from_cli(cli);
  std::cout << "== Fig. 3: window variants vs Polka/Greedy/Priority, throughput ==\n\n";
  const bool ok = harness::run_matrix_and_print(spec, harness::Metric::kThroughput, std::cout);
  return ok ? 0 : 2;
}
