// Virtual-time scaling shapes (substitution for the paper's 4-core host;
// see DESIGN.md §2): the Fig. 2/3-style comparison in the discrete-time
// simulator, where M = 1..32 threads run at full parallelism regardless of
// how many hardware threads this machine has.
//
// Reported per M: virtual throughput (commits per step) and aborts/commit
// for the simulated window schedulers, the one-shot RandomizedRounds
// baseline and the Greedy-style oldest-first baseline.
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("threads", "comma-separated M values", std::string("1,2,4,8,16,32,64"));
  cli.add_flag("n", "transactions per thread N (paper: 50)", static_cast<std::int64_t>(50));
  cli.add_flag("resources", "global resource pool size", static_cast<std::int64_t>(64));
  cli.add_flag("accesses", "resources per transaction", static_cast<std::int64_t>(2));
  cli.add_flag("runs", "repetitions per point", static_cast<std::int64_t>(3));
  cli.add_flag("seed", "workload seed", static_cast<std::int64_t>(5));
  cli.add_flag("csv", "emit CSV", false);
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto resources = static_cast<std::uint32_t>(cli.get_int("resources"));
  const auto accesses = static_cast<std::uint32_t>(cli.get_int("accesses"));
  const auto runs = static_cast<unsigned>(cli.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  sim::SchedulerOptions schedulers[5];
  schedulers[0].mode = sim::SchedulerOptions::Mode::kOffline;
  schedulers[1].mode = sim::SchedulerOptions::Mode::kOnline;
  schedulers[2].mode = sim::SchedulerOptions::Mode::kOnline;
  schedulers[2].dynamic_frames = true;
  schedulers[3].mode = sim::SchedulerOptions::Mode::kOneshotRR;
  schedulers[4].mode = sim::SchedulerOptions::Mode::kGreedyTimestamp;

  std::cout << "== Virtual-time scaling (simulator), N=" << n << " ==\n\n";

  Table tput({"scheduler \\ M", "1", "2", "4", "8", "16", "32"});
  Table aborts({"scheduler \\ M", "1", "2", "4", "8", "16", "32"});
  const auto thread_list = cli.get_int_list("threads");

  for (const auto& opt : schedulers) {
    std::vector<std::string> trow{sim::scheduler_name(opt)};
    std::vector<std::string> arow{sim::scheduler_name(opt)};
    for (const auto m64 : thread_list) {
      const auto m = static_cast<std::uint32_t>(m64);
      const sim::SimWindow w = sim::make_random_window(m, n, resources, accesses, seed);
      const sim::ConflictGraph g(w);
      const sim::AveragedSim avg = sim::average_runs(w, g, opt, runs, seed + m);
      trow.push_back(Table::num(avg.throughput, 3));
      arow.push_back(Table::num(avg.aborts_per_commit, 2));
    }
    // Tables were sized for the default 6 thread counts; pad/trim to match.
    while (trow.size() < 7) trow.push_back("-");
    while (arow.size() < 7) arow.push_back("-");
    trow.resize(7);
    arow.resize(7);
    tput.add_row(std::move(trow));
    aborts.add_row(std::move(arow));
  }

  const bool csv = cli.get_bool("csv");
  std::cout << "# virtual throughput (commits per step), higher is better\n"
            << (csv ? tput.to_csv() : tput.to_text()) << "\n"
            << "# aborts per commit, lower is better\n"
            << (csv ? aborts.to_csv() : aborts.to_text());
  return 0;
}
