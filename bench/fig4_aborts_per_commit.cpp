// Figure 4: aborts per commit for the window variants and the classic
// managers on the four benchmarks over M = 1..32 threads.
//
// Expected shape (paper Section III-C): window variants show 2-10x fewer
// aborts/commit than Greedy and Priority on List/RBTree/Vacation, within
// 1-3x of Polka; SkipList is flat for every manager (low conflict rate).
#include <iostream>

#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  harness::register_matrix_flags(
      cli, /*benchmarks=*/"list,rbtree,skiplist,vacation",
      /*cms=*/"Online-Dynamic,Adaptive-Improved-Dynamic,Polka,Greedy,Priority",
      /*threads=*/"1,2,4,8,16,32,64", /*ms=*/400, /*runs=*/1);
  if (!cli.parse(argc, argv)) return 1;
  const harness::MatrixSpec spec = harness::matrix_from_cli(cli);
  std::cout << "== Fig. 4: aborts per commit ==\n\n";
  const bool ok =
      harness::run_matrix_and_print(spec, harness::Metric::kAbortsPerCommit, std::cout);
  return ok ? 0 : 2;
}
